"""The fault-injection and litmus-test workload axes.

Three new ``verify()`` axes ride on the same differential-oracle contract as
the rest of the engine -- the compiled kernel must agree bit-identically with
the object executor on every one of them:

* **fault injection** -- per-channel message duplication and bounded
  adjacent reordering beyond the unordered model
  (:class:`~repro.system.system.FaultModel`);
* **multi-address workloads** -- per-address directory/cache-block planes so
  a search interleaves accesses to independent blocks
  (``System(num_addresses=2)``);
* **litmus tests** -- data values through ``Data`` messages and memory, with
  :class:`~repro.verification.invariants.LitmusInvariant` checking
  final-observed-value outcomes (SB, MP, coRR bundled in
  :mod:`repro.verification.litmus`).

The empirical headline this module pins: **every bundled protocol passes all
three litmus tests fault-free, and -- with the generation-level hardening
pass (``GenerationConfig.harden``) -- survives both measured fault classes.**
A duplicated response is absorbed by generated idempotence reactions
(miss-report + directory-side recovery), and a reordered ordered channel no
longer head-of-line-deadlocks the stalling configurations (re-queue
semantics).  The full PASS matrix is pinned per protocol and per concurrency
policy, bit-identical across both kernels with zero decodes on the compiled
reduced path.  The pre-hardening counterexamples survive in
``test_fault_regressions.py`` against ``harden=False`` builds.
"""

import pytest

from repro import protocols
from repro.dsl.types import AccessKind
from repro.system import System, Workload
from repro.system.message import Message, message_sort_key
from repro.system.network import OrderedNetwork, UnorderedNetwork
from repro.system.system import (
    DeliverMessage,
    DuplicateMessage,
    FaultModel,
    IssueAccess,
    LitmusWorkload,
    ReorderMessage,
)
from repro.verification import (
    LITMUS_TESTS,
    default_invariants,
    single_owner_invariant,
    verify,
)
from repro.verification.engine.canonical import relabel_event
from repro.verification.invariants import compiled_invariant_codes

from verification_helpers import sample_reachable_states

ALL_PROTOCOLS = protocols.available_protocols()
ORDERED_PROTOCOLS = [n for n in ALL_PROTOCOLS if n != "MSI-Unordered"]


def _workload(name: str, accesses: int = 1) -> Workload:
    if name == "MSI-Unordered":
        # The unordered variant has no eviction path by design.
        return Workload(max_accesses_per_cache=accesses,
                        access_kinds=(AccessKind.LOAD, AccessKind.STORE))
    return Workload(max_accesses_per_cache=accesses)


def _plain_invariants(name: str):
    if name == "TSO-CC":
        # TSO-CC intentionally breaks SWMR in physical time (stale untracked
        # readers); check single ownership, as the rest of the suite does.
        return (single_owner_invariant,)
    return tuple(default_invariants())


def _litmus_invariants(name: str, test):
    return _plain_invariants(name) + (test.invariant,)


# ---------------------------------------------------------------------------
# Network fault primitives
# ---------------------------------------------------------------------------


def _msg(mtype="GetS", src=0, dst=-1, vnet=0, data=None):
    return Message(mtype=mtype, src=src, dst=dst, requestor=max(src, 0),
                   vnet=vnet, data=data)


class TestNetworkFaultPrimitives:
    def test_ordered_duplicate_prepends_a_copy_at_the_head(self):
        m = _msg()
        net = OrderedNetwork().send(m, _msg(data=1))
        dup = net.duplicate(m)
        (_, msgs), = dup.channels
        assert msgs == (m, m, _msg(data=1))

    def test_ordered_duplicate_rejects_non_head_messages(self):
        net = OrderedNetwork().send(_msg(), _msg(data=1))
        with pytest.raises(ValueError):
            net.duplicate(_msg(data=1))

    def test_unordered_duplicate_adds_a_copy_of_any_in_flight_message(self):
        m = _msg()
        net = UnorderedNetwork().send(m, _msg(data=1))
        dup = net.duplicate(m)
        assert sorted(dup.messages, key=message_sort_key) == sorted(
            (m, m, _msg(data=1)), key=message_sort_key
        )
        with pytest.raises(ValueError):
            net.duplicate(_msg(mtype="GetM"))

    def test_ordered_reorderable_lists_adjacent_differing_pairs_only(self):
        a, b = _msg(dst=0, vnet=1), _msg(dst=0, vnet=1, data=1)
        net = OrderedNetwork().send(a, a, b)
        # positions: (a,a) equal -> skipped; (a,b) differ -> swap at 1.
        assert net.reorderable() == ((0, 0, 1, 1),)
        swapped = net.reorder(0, 0, 1, 1)
        (_, msgs), = swapped.channels
        assert msgs == (a, b, a)

    def test_ordered_reorder_rejects_out_of_range_positions(self):
        net = OrderedNetwork().send(_msg(), _msg(data=1))
        with pytest.raises(ValueError):
            net.reorder(0, -1, 0, 5)

    def test_unordered_network_has_no_reorder_axis(self):
        net = UnorderedNetwork().send(_msg(), _msg(data=1))
        assert net.reorderable() == ()
        with pytest.raises(ValueError):
            net.reorder(0, -1, 0, 0)


class TestModelValidation:
    def test_fault_model_requires_an_axis(self):
        with pytest.raises(ValueError):
            FaultModel()

    def test_fault_model_rejects_negative_budgets(self):
        with pytest.raises(ValueError):
            FaultModel(duplicate=True, budget=-1)

    def test_litmus_program_count_must_match_caches(self, msi_nonstalling):
        workload = LitmusWorkload(programs=(((AccessKind.LOAD, 0),),))
        with pytest.raises(ValueError):
            System(msi_nonstalling, num_caches=2, workload=workload)

    def test_num_addresses_must_cover_the_programs(self, msi_nonstalling):
        workload = LitmusWorkload(programs=(
            ((AccessKind.LOAD, 1),), ((AccessKind.STORE, 0),),
        ))
        with pytest.raises(ValueError):
            System(msi_nonstalling, num_caches=2, workload=workload,
                   num_addresses=1)

    def test_fault_events_rejected_without_a_fault_model(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1))
        state = system.initial_state()
        outcome = system.apply(state, DuplicateMessage(message=_msg()))
        assert outcome.error is not None


# ---------------------------------------------------------------------------
# Event codec + symmetry relabeling of fault events
# ---------------------------------------------------------------------------


class TestFaultEventCodecAndRelabel:
    @pytest.fixture()
    def fault_system(self, msi_nonstalling):
        return System(msi_nonstalling, num_caches=2,
                      workload=Workload(max_accesses_per_cache=1),
                      faults=FaultModel(duplicate=True, reorder=True))

    def test_fault_events_round_trip_through_the_codec(self, fault_system):
        codec = fault_system.codec()
        events = [
            DuplicateMessage(message=_msg(mtype=codec.mtypes[0], dst=1, vnet=1)),
            ReorderMessage(src=-1, dst=1, vnet=1, position=2),
        ]
        for event in events:
            assert codec.decode_event(codec.encode_event(event)) == event

    def test_multi_address_events_carry_the_plane(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1),
                        num_addresses=2,
                        faults=FaultModel(duplicate=True, reorder=True))
        codec = system.codec()
        events = [
            IssueAccess(cache_id=1, access=AccessKind.STORE, addr=1),
            DeliverMessage(message=_msg(mtype=codec.mtypes[0]), addr=1),
            DuplicateMessage(message=_msg(mtype=codec.mtypes[0]), addr=1),
            ReorderMessage(src=0, dst=-1, vnet=0, position=0, addr=1),
        ]
        for event in events:
            assert codec.decode_event(codec.encode_event(event)) == event

    def test_relabel_permutes_fault_event_endpoints(self):
        perm = (1, 0)
        dup = DuplicateMessage(message=_msg(src=0, dst=1, vnet=1))
        relabeled = relabel_event(dup, perm)
        assert isinstance(relabeled, DuplicateMessage)
        assert (relabeled.message.src, relabeled.message.dst) == (1, 0)
        reo = relabel_event(ReorderMessage(src=-1, dst=0, vnet=1, position=3), perm)
        assert (reo.src, reo.dst, reo.position) == (-1, 1, 3)
        # Identity stays the same object (the hot-path fast exit).
        assert relabel_event(dup, (0, 1)) is dup


# ---------------------------------------------------------------------------
# Expansion parity: kernel vs object executor, per state, per axis
# ---------------------------------------------------------------------------


def assert_expansion_parity(system, state, invariants):
    """One-state differential check over every new axis' machinery:
    codec round-trip, event enumeration, successor construction, and the
    quiescence/completion/invariant predicates."""
    codec = system.codec()
    kernel = system.kernel()
    enc = codec.encode(state)
    assert codec.decode(enc) == state
    events = system.enabled_events(state)
    plans, net = kernel.enabled(enc)
    assert [plan[1] for plan in plans] == [codec.encode_event(e) for e in events]
    assert kernel.is_quiescent(enc) == system.is_quiescent(state)
    assert kernel.is_complete(enc) == system.is_complete(state)
    codes = compiled_invariant_codes(invariants)
    expected_verdict = all(inv(system, state) is None for inv in invariants)
    assert kernel.check(enc, codes) == expected_verdict
    for event, plan in zip(events, plans):
        outcome = system.apply(state, event)
        succ = kernel.apply(enc, plan, net)
        if succ is None:
            assert outcome.error is not None, (
                f"kernel delegated {event} but the object executor succeeded"
            )
        else:
            assert outcome.error is None, (
                f"kernel applied {event} but the object executor errored: "
                f"{outcome.error}"
            )
            assert succ == codec.encode(outcome.state), f"successor mismatch on {event}"


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_duplication_expansion_parity(all_generated, name):
    system = System(all_generated[(name, "nonstalling")], num_caches=2,
                    workload=_workload(name, 2),
                    faults=FaultModel(duplicate=True))
    states = sample_reachable_states(system, seed=61 + len(name), walks=6,
                                     max_steps=30)
    assert any(s.faults_used for s in states), "walks never injected a fault"
    for state in states:
        assert_expansion_parity(system, state, tuple(default_invariants()))


@pytest.mark.parametrize("name", ORDERED_PROTOCOLS)
def test_reorder_expansion_parity(all_generated, name):
    system = System(all_generated[(name, "nonstalling")], num_caches=2,
                    workload=_workload(name, 2),
                    faults=FaultModel(reorder=True, budget=2))
    states = sample_reachable_states(system, seed=67 + len(name), walks=6,
                                     max_steps=30)
    for state in states:
        assert_expansion_parity(system, state, tuple(default_invariants()))


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_two_address_expansion_parity(all_generated, name):
    system = System(all_generated[(name, "nonstalling")], num_caches=2,
                    workload=_workload(name, 1), num_addresses=2)
    states = sample_reachable_states(system, seed=71 + len(name), walks=6,
                                     max_steps=30)
    assert any(
        c.fsm_state != system.protocol.cache.initial_state
        for s in states for c in s.caches[system.num_caches:]
    ), "walks never touched the second address plane"
    for state in states:
        assert_expansion_parity(system, state, tuple(default_invariants()))


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_litmus_expansion_parity(all_generated, name):
    from repro.verification import message_passing

    test = message_passing()
    system = System(all_generated[(name, "stalling")], num_caches=2,
                    workload=test.workload)
    states = sample_reachable_states(system, seed=73 + len(name), walks=6,
                                     max_steps=30)
    assert any(system.is_complete(s) for s in states), (
        "walks never completed the litmus programs"
    )
    for state in states:
        assert_expansion_parity(system, state, _litmus_invariants(name, test))


# ---------------------------------------------------------------------------
# Whole-search parity and the documented fault outcomes
# ---------------------------------------------------------------------------


def _search_pair(system_factory, **kwargs):
    compiled = verify(system_factory(), **kwargs)
    objected = verify(system_factory(), kernel="object", **kwargs)
    assert compiled.kernel == "compiled" and objected.kernel == "object"
    assert compiled.states_explored == objected.states_explored
    assert compiled.transitions_explored == objected.transitions_explored
    assert compiled.ok == objected.ok
    assert compiled.error == objected.error
    assert compiled.deadlock == objected.deadlock
    assert compiled.trace == objected.trace
    return compiled


# Exact hardened fault-matrix pins: (states, transitions) per protocol and
# concurrency policy, measured with the default harden=True generation.  Any
# drift here means the hardening pass (or the search) changed behaviour.
DUPLICATION_MATRIX = {
    # name: {"stalling": (states, transitions), "nonstalling": ...}
    "MSI": {"stalling": (476, 840), "nonstalling": (508, 894)},
    "MESI": {"stalling": (515, 878), "nonstalling": (547, 932)},
    "MOSI": {"stalling": (442, 778), "nonstalling": (488, 852)},
    "MSI-Upgrade": {"stalling": (476, 840), "nonstalling": (508, 894)},
    "MSI-Unordered": {"stalling": (525, 936), "nonstalling": (923, 1708)},
    "TSO-CC": {"stalling": (380, 686), "nonstalling": (390, 700)},
}

REORDER_MATRIX = {
    "MSI": {"stalling": (2682, 4922), "nonstalling": (3336, 5890)},
    "MESI": {"stalling": (2758, 5072), "nonstalling": (3691, 6470)},
    "MOSI": {"stalling": (2430, 4106), "nonstalling": (2815, 4582)},
    "MSI-Upgrade": {"stalling": (2762, 5082), "nonstalling": (3396, 6006)},
    "TSO-CC": {"stalling": (1292, 2250), "nonstalling": (1414, 2364)},
}


@pytest.mark.parametrize("policy", ["stalling", "nonstalling"])
@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_duplication_passes_every_hardened_protocol_on_both_kernels(
    all_generated, name, policy
):
    """A duplicated message is absorbed by the generated idempotence
    reactions: the caches report served-elsewhere forwards back to the
    directory, the directory recovers missed handoffs from (provably
    current) memory, and duplicate responses in stable states are silently
    consumed.  Both kernels agree on the full passing search, with zero
    decodes on the compiled reduced path and the exact pinned layout."""
    result = _search_pair(
        lambda: System(all_generated[(name, policy)], num_caches=2,
                       workload=_workload(name, 1),
                       faults=FaultModel(duplicate=True)),
        invariants=_plain_invariants(name),
    )
    assert result.ok, f"{name}/{policy}: {result.summary}"
    assert result.stats["decode_count"] == 0
    assert (result.states_explored, result.transitions_explored) == (
        DUPLICATION_MATRIX[name][policy]
    )


@pytest.mark.parametrize("policy", ["stalling", "nonstalling"])
@pytest.mark.parametrize("name", ORDERED_PROTOCOLS)
def test_reorder_passes_every_hardened_ordered_protocol_identically(
    all_generated, name, policy
):
    """Re-queue semantics replace head-of-line blocking: a stalled ordered
    channel head rotates behind deliverable messages, so one adjacent swap
    (e.g. a forward past the response it chases) no longer deadlocks the
    stalling configurations.  Bit-identical on both kernels, zero decodes,
    exact pinned layout."""
    result = _search_pair(
        lambda: System(all_generated[(name, policy)], num_caches=2,
                       workload=Workload(max_accesses_per_cache=2),
                       faults=FaultModel(reorder=True)),
        invariants=_plain_invariants(name),
    )
    assert result.ok, f"{name}/{policy}: {result.summary}"
    assert not result.deadlock
    assert result.stats["decode_count"] == 0
    assert (result.states_explored, result.transitions_explored) == (
        REORDER_MATRIX[name][policy]
    )


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_two_address_search_parity(all_generated, name):
    result = _search_pair(
        lambda: System(all_generated[(name, "nonstalling")], num_caches=2,
                       workload=_workload(name, 1), num_addresses=2),
        invariants=_plain_invariants(name),
    )
    assert result.ok
    assert result.stats["decode_count"] == 0


def test_single_address_fault_free_layout_is_unchanged(msi_nonstalling):
    """The multi-plane/fault-lane codec extensions must be invisible for the
    historical configuration: same encoding, same pinned search."""
    system = System(msi_nonstalling, num_caches=2,
                    workload=Workload(max_accesses_per_cache=2))
    codec = system.codec()
    assert codec.fault_offset is None
    assert codec.net_offset == codec.version_offset + 1
    result = verify(system)
    assert (result.states_explored, result.transitions_explored) == (1702, 3078)


# ---------------------------------------------------------------------------
# The litmus matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("build", LITMUS_TESTS, ids=lambda b: b().name)
@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_litmus_passes_fault_free_on_every_protocol(all_generated, name, build):
    """SB, MP and coRR hold on every bundled protocol under fault-free
    delivery, on both kernels, with bit-identical searches and zero decodes
    on the compiled path."""
    test = build()
    invariants = _litmus_invariants(name, test)
    result = _search_pair(
        lambda: System(all_generated[(name, "stalling")], num_caches=2,
                       workload=test.workload),
        invariants=invariants,
    )
    assert result.ok, f"{name}/{test.name}: {result.summary}"
    assert result.complete_states > 0
    assert result.stats["decode_count"] == 0


LITMUS_DUPLICATION_PINS = {
    # Single-transaction-per-location litmus programs pass under duplication
    # on hardened MSI; coRR is the documented residual (below).
    "litmus-SB": (1524, 3364),
    "litmus-MP": (1778, 4083),
}


@pytest.mark.parametrize("litmus", sorted(LITMUS_DUPLICATION_PINS))
def test_litmus_passes_under_duplication_on_hardened_msi(
    all_generated, litmus
):
    """Litmus runs under fault injection compose with the hardening pass:
    the store-buffering and message-passing outcomes hold with a duplicated
    message in flight, identically on both kernels."""
    test = next(b() for b in LITMUS_TESTS if b().name == litmus)
    result = _search_pair(
        lambda: System(all_generated[("MSI", "stalling")], num_caches=2,
                       workload=test.workload,
                       faults=FaultModel(duplicate=True)),
        invariants=test.invariants(),
    )
    assert result.ok, f"{litmus}: {result.summary}"
    assert (result.states_explored, result.transitions_explored) == (
        LITMUS_DUPLICATION_PINS[litmus]
    )


class TestThreeCacheResiduals:
    """The hardened guarantee is the measured 2-cache PR 6 matrix.  At
    three caches two residual classes remain; pin them so a future fix
    flips these knowingly (ROADMAP direction 4)."""

    def test_duplicated_inv_ack_double_count(self, all_generated):
        """A duplicated ``Inv_Ack`` is counted twice by the ack *counter*
        (per-sender bookkeeping would be needed to dedupe), so the storer
        reaches M while an un-invalidated sharer still reads."""
        result = verify(
            System(all_generated[("MSI", "stalling")], num_caches=3,
                   workload=Workload(max_accesses_per_cache=1),
                   faults=FaultModel(duplicate=True)),
        )
        assert not result.ok and not result.deadlock
        assert result.violation is not None and "SWMR" in str(result.violation)
        assert any(line.startswith("duplicate Inv_Ack")
                   for line in result.trace)

    def test_reordered_multi_access_miss_recovery_deadlock(
        self, all_generated
    ):
        """With replacements in play (2 accesses), a reordered ``Put_Ack``
        past a forward leaves the directory in a *later* transaction's
        transient when the earlier transaction's miss report arrives; the
        recovery absorbs it without re-serving the requestor and the
        search deadlocks."""
        result = verify(
            System(all_generated[("MSI", "stalling")], num_caches=3,
                   workload=Workload(max_accesses_per_cache=2),
                   faults=FaultModel(reorder=True)),
        )
        assert not result.ok and result.deadlock

    def test_single_access_three_cache_reorder_passes(self, all_generated):
        """Without replacements the reorder hardening does extend to three
        caches -- the nightly throughput smoke relies on this config."""
        result = verify(
            System(all_generated[("MSI", "stalling")], num_caches=3,
                   workload=Workload(max_accesses_per_cache=1),
                   faults=FaultModel(reorder=True)),
        )
        assert result.ok, result.summary


def test_corr_duplication_aliasing_is_the_documented_residual(all_generated):
    """coRR issues two loads from the same cache; a duplicated
    owner-to-requestor ``Data`` from the first load can satisfy the second
    load's transient after an intervening invalidation (the messages are
    indistinguishable without transaction IDs, which generation-level
    hardening deliberately does not add).  Pin the residual so a future
    tagging scheme flips this test knowingly."""
    test = next(b() for b in LITMUS_TESTS if b().name == "litmus-coRR")
    result = verify(
        System(all_generated[("MSI", "stalling")], num_caches=2,
               workload=test.workload, faults=FaultModel(duplicate=True)),
        invariants=test.invariants(), kernel="object",
    )
    assert not result.ok
    assert result.violation is not None
    assert "SWMR" in str(result.violation)
    assert any(line.startswith("duplicate Data") for line in result.trace)


def test_litmus_sb_passes_under_reorder_on_hardened_msi(all_generated):
    from repro.verification import store_buffering

    test = store_buffering()
    result = _search_pair(
        lambda: System(all_generated[("MSI", "stalling")], num_caches=2,
                       workload=test.workload,
                       faults=FaultModel(reorder=True)),
        invariants=test.invariants(),
    )
    assert result.ok and not result.deadlock
    assert (result.states_explored, result.transitions_explored) == (211, 348)


# ---------------------------------------------------------------------------
# Litmus mutants: each test catches an injected consistency bug
# ---------------------------------------------------------------------------


class StaleDataSystem(System):
    """Injected consistency bug: deliveries to caches on selected address
    planes carry stale data -- any payload version ``>= min_version`` is
    replaced with the initial value (version 0) just before delivery.

    A ``System`` subclass, so searches run on the object backend (the
    compiled kernel's fallback contract); the corruption is a deterministic
    function of the delivered message, keeping the state space well-defined.
    """

    def __init__(self, *args, corrupt_addrs, min_version, **kwargs):
        super().__init__(*args, **kwargs)
        self.corrupt_addrs = corrupt_addrs
        self.min_version = min_version

    def apply(self, state, event):
        if (
            isinstance(event, DeliverMessage)
            and event.addr in self.corrupt_addrs
            and event.message.dst >= 0
            and event.message.data is not None
            and event.message.data >= self.min_version
        ):
            from dataclasses import replace as _replace

            stale = _replace(event.message, data=0)
            network = self._plane_network(state, event.addr)
            network = _replace_message(network, event.message, stale)
            state = self._with_plane(state, event.addr, network=network)
            event = DeliverMessage(message=stale, addr=event.addr)
        return super().apply(state, event)


def _replace_message(network, old, new):
    """Swap one in-flight message in place (same channel position)."""
    if isinstance(network, OrderedNetwork):
        channels = []
        replaced = False
        for key, msgs in network.channels:
            if not replaced and old in msgs:
                i = msgs.index(old)
                msgs = msgs[:i] + (new,) + msgs[i + 1:]
                replaced = True
            channels.append((key, msgs))
        assert replaced
        return OrderedNetwork(channels=tuple(channels))
    msgs = list(network.messages)
    msgs[msgs.index(old)] = new
    return UnorderedNetwork(messages=tuple(sorted(msgs, key=message_sort_key)))


class TestLitmusMutantsCatchInjectedBugs:
    def test_sb_catches_stale_reads_of_both_locations(self, msi_stalling):
        from repro.verification import store_buffering

        test = store_buffering()
        system = StaleDataSystem(msi_stalling, num_caches=2,
                                 workload=test.workload,
                                 corrupt_addrs={0, 1}, min_version=1)
        result = verify(system, invariants=test.invariants())
        assert not result.ok
        assert result.violation is not None
        assert result.violation.name == "litmus-SB"
        assert result.kernel == "object"  # mutants take the fallback path

    def test_mp_catches_stale_data_behind_a_fresh_flag(self, msi_stalling):
        from repro.verification import message_passing

        test = message_passing()
        system = StaleDataSystem(msi_stalling, num_caches=2,
                                 workload=test.workload,
                                 corrupt_addrs={0}, min_version=1)
        result = verify(system, invariants=test.invariants())
        assert not result.ok
        assert result.violation is not None
        assert result.violation.name == "litmus-MP"

    def test_corr_catches_backwards_reads_via_the_substrate(self, msi_stalling):
        from repro.verification import coherent_read_read

        test = coherent_read_read()
        system = StaleDataSystem(msi_stalling, num_caches=2,
                                 workload=test.workload,
                                 corrupt_addrs={0}, min_version=2)
        result = verify(system, invariants=test.invariants())
        assert not result.ok
        assert result.error is not None and "went backwards" in result.error

    def test_the_unmutated_substrate_passes_all_three(self, msi_stalling):
        for build in LITMUS_TESTS:
            test = build()
            system = System(msi_stalling, num_caches=2, workload=test.workload)
            result = verify(system, invariants=test.invariants())
            assert result.ok, f"{test.name}: {result.summary}"


# ---------------------------------------------------------------------------
# Symmetry: faults compose, litmus and multi-address gate off
# ---------------------------------------------------------------------------


class TestSymmetryComposition:
    def test_faulted_search_reduces_with_identical_verdict(self, msi_nonstalling):
        make = lambda: System(msi_nonstalling, num_caches=3,
                              workload=Workload(max_accesses_per_cache=1),
                              faults=FaultModel(reorder=True))
        full = verify(make())
        reduced = verify(make(), symmetry=True)
        assert full.ok and reduced.ok
        assert reduced.states_explored < full.states_explored
        assert reduced.stats["decode_count"] == 0

    def test_reduced_fault_search_parity_across_kernels(self, msi_nonstalling):
        make = lambda: System(msi_nonstalling, num_caches=3,
                              workload=Workload(max_accesses_per_cache=1),
                              faults=FaultModel(duplicate=True))
        compiled = verify(make(), symmetry=True)
        objected = verify(make(), symmetry=True, kernel="object")
        assert compiled.states_explored == objected.states_explored
        assert compiled.transitions_explored == objected.transitions_explored
        assert compiled.ok == objected.ok
        assert compiled.trace == objected.trace

    def test_multi_address_symmetry_is_rejected(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1),
                        num_addresses=2)
        assert not system.supports_symmetry
        with pytest.raises(ValueError, match="symmetry"):
            verify(system, symmetry=True)

    def test_litmus_symmetry_is_rejected(self, msi_nonstalling):
        from repro.verification import store_buffering

        test = store_buffering()
        system = System(msi_nonstalling, num_caches=2, workload=test.workload)
        assert not system.supports_symmetry
        with pytest.raises(ValueError, match="symmetry"):
            verify(system, symmetry=True, invariants=test.invariants())

    def test_faults_alone_keep_symmetry_support(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1),
                        faults=FaultModel(duplicate=True))
        assert system.supports_symmetry


class TestSymmetryRejectedAtConstruction:
    """Declaring symmetry intent on the ``System`` itself fails fast: the
    unsupported combinations raise at construction with a message naming
    the combination, instead of surfacing mid-verify."""

    def test_multi_address_symmetry_raises_at_construction(
        self, msi_nonstalling
    ):
        with pytest.raises(ValueError, match="num_addresses=2"):
            System(msi_nonstalling, num_caches=2,
                   workload=Workload(max_accesses_per_cache=1),
                   num_addresses=2, symmetry=True)

    def test_litmus_symmetry_raises_at_construction(self, msi_nonstalling):
        from repro.verification import store_buffering

        test = store_buffering()
        with pytest.raises(ValueError, match="litmus"):
            System(msi_nonstalling, num_caches=2, workload=test.workload,
                   symmetry=True)

    def test_verify_error_names_the_combination(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1),
                        num_addresses=2)
        with pytest.raises(ValueError, match="num_addresses=2"):
            verify(system, symmetry=True)

    def test_constructed_symmetry_intent_flows_into_verify(
        self, msi_nonstalling
    ):
        system = System(msi_nonstalling, num_caches=3,
                        workload=Workload(max_accesses_per_cache=1),
                        symmetry=True)
        result = verify(system)  # no explicit symmetry argument
        assert result.ok and result.symmetry_reduced

    def test_random_walk_coverage_rejects_unsupported_symmetry(
        self, msi_nonstalling
    ):
        from repro.verification import random_walk

        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1),
                        num_addresses=2)
        with pytest.raises(ValueError, match="symmetry"):
            random_walk(system, runs=1, max_steps=5, track_coverage=True)


# ---------------------------------------------------------------------------
# Partial aborts record their stats (satellite fix pin)
# ---------------------------------------------------------------------------


class TestPartialAbortStats:
    def test_budgeted_abort_still_reports_the_time_split(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        result = verify(system, max_states=200)
        assert result.partial and result.ok
        assert result.states_explored == 200
        stats = result.stats
        assert stats["kernel"] == "compiled"
        assert stats["decode_count"] == 0
        assert isinstance(stats["canonicalization_seconds"], float)
        assert isinstance(stats["expansion_seconds"], float)
        assert stats["expansion_seconds"] >= 0.0

    def test_budgeted_abort_on_faulted_object_search(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2),
                        faults=FaultModel(duplicate=True, reorder=True,
                                          budget=2))
        result = verify(system, max_states=50, kernel="object")
        assert result.states_explored == 50
        stats = result.stats
        assert stats["kernel"] == "object"
        assert stats["strategy"] == "bfs"
        assert stats["expansion_seconds"] is not None
