"""Differential tests: the compiled transition kernel vs the object executor.

The compiled kernel (:mod:`repro.system.kernel`) is the default search
backend, so its correctness argument is *exact agreement* with the object
execution substrate it replaced on the hot path:

* per-state expansion parity -- identical enabled events (in order),
  bit-identical successor encodings, identical error positions, identical
  quiescence and invariant verdicts -- property-tested over random-walk
  samples of every bundled protocol in both generation configs, including
  the MOSI saved-requestor (deferred-send) states and the MSI-Unordered
  late-absorb redirect states;
* whole-search parity -- ``verify(kernel="compiled")`` reproduces the object
  backend's exploration exactly (states, transitions, verdicts), pinned to
  the seed counts, and mutant protocols fail with the same error text and
  the same replayable trace;
* the fallback contract -- ``System`` subclasses and unrecognized invariant
  callables silently run on the object backend.
"""

import pytest

from repro import protocols
from repro.core import GenerationConfig, generate
from repro.dsl.types import AccessKind
from repro.system import System, Workload
from repro.system.network import OrderedNetwork
from repro.verification import default_invariants, verify
from repro.verification.invariants import compiled_invariant_codes

from verification_helpers import (
    MessageDroppingSystem,
    make_missing_inv_mutant,
    make_swmr_mutant,
    sample_reachable_states,
)

ALL_PROTOCOLS = protocols.available_protocols()
CONFIGS = ["nonstalling", "stalling"]

#: Kernel evaluator codes for the default invariants (SWMR, single-owner).
DEFAULT_CODES = compiled_invariant_codes(tuple(default_invariants()))


def _workload(name: str) -> Workload:
    if name == "MSI-Unordered":
        return Workload(max_accesses_per_cache=2,
                        access_kinds=(AccessKind.LOAD, AccessKind.STORE))
    return Workload(max_accesses_per_cache=2)


def assert_expansion_parity(system, state):
    """One-state differential check: enumeration, application, predicates.

    The kernel may return ``None`` from ``apply`` (its slow-path delegation
    signal); parity then requires the object executor to report an error for
    that event -- on the bundled protocols every delegation is an error path.
    """
    codec = system.codec()
    kernel = system.kernel()
    enc = codec.encode(state)
    events = system.enabled_events(state)
    plans, net = kernel.enabled(enc)
    assert [plan[1] for plan in plans] == [codec.encode_event(e) for e in events]
    assert kernel.is_quiescent(enc) == system.is_quiescent(state)
    expected_verdict = all(inv(system, state) is None for inv in default_invariants())
    assert kernel.check(enc, DEFAULT_CODES) == expected_verdict
    for event, plan in zip(events, plans):
        outcome = system.apply(state, event)
        succ = kernel.apply(enc, plan, net)
        if succ is None:
            assert outcome.error is not None, (
                f"kernel delegated {event} but the object executor succeeded"
            )
        else:
            assert outcome.error is None, (
                f"kernel applied {event} but the object executor errored: "
                f"{outcome.error}"
            )
            assert succ == codec.encode(outcome.state), f"successor mismatch on {event}"


@pytest.mark.parametrize("config_label", CONFIGS)
@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_random_walk_expansion_parity(all_generated, name, config_label):
    system = System(all_generated[(name, config_label)], num_caches=2,
                    workload=_workload(name))
    states = sample_reachable_states(system, seed=17 + len(name), walks=6,
                                     max_steps=30)
    for state in states:
        assert_expansion_parity(system, state)


def test_saved_requestor_states_parity(all_generated):
    """MOSI nonstalling at 3 caches reaches deferred-send states whose saved
    slots hold cache IDs (the `requestor_from_slot` stamping of the owner
    recall); the kernel must expand those bit-identically too."""
    system = System(all_generated[("MOSI", "nonstalling")], num_caches=3,
                    workload=Workload(max_accesses_per_cache=2))
    states = sample_reachable_states(system, seed=29, walks=10, max_steps=60)
    codec = system.codec()
    assert any(codec.has_saved_ids(codec.encode(s)) for s in states), (
        "sampling never reached a saved-requestor state; pick another seed"
    )
    for state in states:
        assert_expansion_parity(system, state)


def test_late_absorb_states_parity(all_generated):
    """MSI-Unordered nonstalling reaches the late-absorb redirect states of
    the PR 2 fix (e.g. IM_AD_I); pin the kernel's agreement through them."""
    system = System(all_generated[("MSI-Unordered", "nonstalling")], num_caches=3,
                    workload=Workload(max_accesses_per_cache=2,
                                      access_kinds=(AccessKind.LOAD,
                                                    AccessKind.STORE)))
    states = sample_reachable_states(system, seed=43, walks=10, max_steps=60)
    absorb_states = {"IM_AD_I", "IM_AD_SI", "IM_A_I", "IM_A_SI", "SM_AD_I",
                     "SM_A_I", "IS_D_I"}
    assert any(
        cache.fsm_state in absorb_states for s in states for cache in s.caches
    ), "sampling never reached a late-absorb state; pick another seed"
    for state in states:
        assert_expansion_parity(system, state)


@pytest.mark.parametrize("config_label", CONFIGS)
@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_whole_search_parity_with_object_backend(all_generated, name, config_label):
    from repro.verification import single_owner_invariant

    invariants = [single_owner_invariant] if name == "TSO-CC" else None
    system = System(all_generated[(name, config_label)], num_caches=2,
                    workload=_workload(name))
    compiled = verify(system, invariants=invariants)
    objected = verify(system, invariants=invariants, kernel="object")
    assert compiled.kernel == "compiled" and objected.kernel == "object"
    assert compiled.ok and objected.ok
    assert compiled.states_explored == objected.states_explored
    assert compiled.transitions_explored == objected.transitions_explored
    assert compiled.complete_states == objected.complete_states


def test_pinned_seed_counts_on_compiled_kernel(msi_nonstalling):
    """The compiled default reproduces the seed explorer bit-exactly."""
    system = System(msi_nonstalling, num_caches=2,
                    workload=Workload(max_accesses_per_cache=2))
    result = verify(system)
    assert result.kernel == "compiled"
    assert result.ok
    assert result.states_explored == 1702
    assert result.transitions_explored == 3078


@pytest.mark.parametrize("symmetry", [False, True])
def test_error_traces_identical_across_kernels(msi_spec, symmetry):
    mutant = make_missing_inv_mutant(msi_spec)
    system = System(mutant, num_caches=2,
                    workload=Workload(max_accesses_per_cache=2))
    compiled = verify(system, symmetry=symmetry)
    objected = verify(system, symmetry=symmetry, kernel="object")
    assert not compiled.ok and not objected.ok
    assert compiled.error == objected.error
    assert compiled.trace == objected.trace
    assert compiled.states_explored == objected.states_explored


def test_violation_traces_identical_across_kernels(msi_spec):
    mutant = make_swmr_mutant(msi_spec)
    system = System(mutant, num_caches=2,
                    workload=Workload(max_accesses_per_cache=2))
    compiled = verify(system)
    objected = verify(system, kernel="object")
    assert not compiled.ok and not objected.ok
    assert compiled.violation is not None and objected.violation is not None
    assert str(compiled.violation) == str(objected.violation)
    assert compiled.trace == objected.trace


def test_parallel_strategy_runs_on_compiled_kernel(msi_nonstalling):
    system = System(msi_nonstalling, num_caches=2,
                    workload=Workload(max_accesses_per_cache=2))
    serial = verify(system, symmetry=True)
    parallel = verify(system, symmetry=True, strategy="parallel", processes=2)
    assert parallel.kernel == "compiled"
    assert parallel.ok and serial.ok
    assert parallel.states_explored == serial.states_explored
    assert parallel.transitions_explored == serial.transitions_explored


class TestFallbackContract:
    def test_system_subclass_falls_back_to_object(self, msi_stalling):
        system = MessageDroppingSystem(
            msi_stalling, num_caches=2,
            workload=Workload(max_accesses_per_cache=1),
            dropped_mtype="GetM",
        )
        result = verify(system)
        assert result.kernel == "object"
        assert not result.ok and result.deadlock

    def test_custom_invariant_falls_back_to_object(self, msi_nonstalling):
        def never_fails(system, state):
            return None

        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1))
        result = verify(system, invariants=[never_fails])
        assert result.kernel == "object" and result.ok

    def test_known_invariant_subset_stays_compiled(self, msi_nonstalling):
        from repro.verification import swmr_invariant

        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1))
        result = verify(system, invariants=[swmr_invariant])
        assert result.kernel == "compiled" and result.ok

    def test_explicit_object_kernel_is_honored(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1))
        result = verify(system, kernel="object")
        assert result.kernel == "object" and result.ok

    def test_unknown_kernel_name_rejected(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2)
        with pytest.raises(ValueError):
            verify(system, kernel="jit")


class TestEmitNetDifferential:
    """The kernel's slice-spliced network re-normalization vs the object model.

    `_emit_net` (and its one-send specialization) rebuild the successor
    network section from lane edits on the parent encoding; the oracle is
    `Network.deliver` + `Network.send` followed by `encoded()`.  The
    randomized sweep plus the pinned corner cases cover the edit
    interactions — in particular a send re-opening the very channel its
    delivery just emptied, which a first version of the one-send path
    corrupted (count lane decremented to zero with the record left behind).
    """

    @pytest.fixture(scope="class")
    def msi_system(self, all_generated):
        return System(all_generated[("MSI", "stalling")], num_caches=3,
                      workload=Workload(max_accesses_per_cache=2))

    def _assert_matches_oracle(self, system, network, where, send_msgs):
        from repro.system.node_state import CacheNodeState, DirectoryNodeState
        from repro.system.system import GlobalState

        codec = system.codec()
        kernel = system.kernel()
        state = GlobalState(
            caches=tuple(
                CacheNodeState(fsm_state=system.protocol.cache.initial_state)
                for _ in range(system.num_caches)
            ),
            directory=DirectoryNodeState(
                fsm_state=system.protocol.directory.initial_state
            ),
            network=network,
        )
        enc = codec.encode(state)
        net = codec.parsed_network(enc)
        expected_net = network
        if where is not None:
            expected_net = expected_net.deliver(network.deliverable()[where])
        expected_net = expected_net.send(*send_msgs)
        expected = enc[: codec.net_offset] + expected_net.encoded(
            codec._mtype_index
        )
        out = list(enc[: codec.net_offset])
        sends = [msg.encoded(codec._mtype_index) for msg in send_msgs]
        kernel._emit_net(out, enc, net, where, sends, codec.net_offset, len(enc))
        assert tuple(out) == expected, (
            f"where={where}, sends={send_msgs}, network={network}"
        )

    def test_send_reopens_the_channel_its_delivery_emptied(self, msi_system):
        """Deliver the only message of a channel and emit one send with the
        same (src, dst, vnet) key: the channel must survive with count 1 and
        the new record — the corruption class the fuzz sweep caught."""
        from repro.system.message import Message

        mtype = msi_system.codec().mtypes[0]
        old = Message(mtype=mtype, src=0, dst=0, vnet=1)
        new = Message(mtype=mtype, src=0, dst=0, vnet=1, data=1)
        network = OrderedNetwork().send(old)
        self._assert_matches_oracle(msi_system, network, 0, [new])

    def test_randomized_against_the_object_network(self, msi_system):
        import random

        from repro.system.message import Message

        rng = random.Random(20260731)
        codec = msi_system.codec()
        mtypes = codec.mtypes
        nodes = [-1, 0, 1, 2]
        for _ in range(1500):
            network = OrderedNetwork()
            for _ in range(rng.randrange(0, 5)):
                network = network.send(Message(
                    mtype=rng.choice(mtypes),
                    src=rng.choice(nodes), dst=rng.choice(nodes),
                    vnet=rng.randrange(2),
                    requestor=rng.choice([None, -1, 0, 1, 2]),
                    data=rng.choice([None, 1, 2]),
                    ack_count=rng.choice([None, 0, 2]),
                ))
            deliverable = network.deliverable()
            where = (
                rng.randrange(len(deliverable))
                if deliverable and rng.random() < 0.7
                else None
            )
            sends = [
                Message(
                    mtype=rng.choice(mtypes),
                    src=rng.choice(nodes), dst=rng.choice(nodes),
                    vnet=rng.randrange(2),
                    data=rng.choice([None, 1]),
                )
                for _ in range(rng.randrange(0, 3))
            ]
            if where is None and not sends:
                continue
            self._assert_matches_oracle(msi_system, network, where, sends)
