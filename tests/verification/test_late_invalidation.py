"""Regression: the MSI-Unordered repeated-invalidation hole found by PR 1.

The deeper 3-cache x 2-access search exposed a latent hole in the bundled
unordered-network MSI spec: a cache whose store was serialized from ``S``
(so an earlier-ordered ``Inv`` may still be in flight) and that was then
redirected by a later-ordered ``Fwd_GetM`` had no transition for the late
``Inv`` -- the state was reported as ``IM_AD_I`` because the redirected
``SM_AD_I`` used to structurally merge with it.

The generator now records the pre-redirect Case-1 messages on every Case-2
redirect (``TransientDescriptor.late_absorbs``) and emits an absorb
transition: acknowledge the late message immediately and re-base the
transaction on the reaction's landing state (``SM_AD_I`` absorbing ``Inv``
lands in ``IM_AD_I``, dropping the dead copy's access permission).

This module replays the *exact* counterexample trace PR 1 recorded, then
pins the generated-FSM shape that closes the hole.
"""

import pytest

from repro.dsl.types import AccessKind
from repro.core.fsm import MessageEvent
from repro.system import System, Workload
from repro.system.message import Message
from repro.system.system import DeliverMessage, IssueAccess


#: The verbatim counterexample from PR 1's E9 benchmark: C0's load completes,
#: C2's store is serialized first (its Inv to C0 lingers on the unordered
#: network), then C0's own GetM, then C1's GetM whose Fwd_GetM redirects C0 --
#: and only then the earlier-ordered Inv arrives.
DOUBLE_INV_TRACE = [
    IssueAccess(cache_id=0, access=AccessKind.LOAD),
    IssueAccess(cache_id=1, access=AccessKind.STORE),
    IssueAccess(cache_id=2, access=AccessKind.STORE),
    DeliverMessage(Message(mtype="GetS", src=0, dst=-1, requestor=0, vnet=0)),
    DeliverMessage(Message(mtype="Data", src=-1, dst=0, requestor=0, data=0, vnet=1)),
    IssueAccess(cache_id=0, access=AccessKind.STORE),
    DeliverMessage(Message(mtype="GetM", src=2, dst=-1, requestor=2, vnet=0)),
    DeliverMessage(Message(mtype="GetM", src=0, dst=-1, requestor=0, vnet=0)),
    DeliverMessage(Message(mtype="GetM", src=1, dst=-1, requestor=1, vnet=0)),
    DeliverMessage(Message(mtype="Fwd_GetM", src=-1, dst=0, requestor=1, vnet=1)),
    DeliverMessage(Message(mtype="Inv", src=-1, dst=0, requestor=2, vnet=1)),
]


@pytest.fixture(scope="module")
def unordered_msi(all_generated):
    return all_generated[("MSI-Unordered", "nonstalling")]


@pytest.fixture(scope="module")
def deep_system(unordered_msi):
    return System(
        unordered_msi,
        num_caches=3,
        workload=Workload(max_accesses_per_cache=2,
                          access_kinds=(AccessKind.LOAD, AccessKind.STORE)),
        ordered=False,
    )


class TestDoubleInvCounterexampleReplay:
    def test_trace_applies_without_error(self, deep_system):
        """Every step of PR 1's counterexample now has a transition."""
        state = deep_system.initial_state()
        for event in DOUBLE_INV_TRACE:
            outcome = deep_system.apply(state, event)
            assert outcome.error is None, f"{event}: {outcome.error}"
            state = outcome.state

    def test_redirect_then_late_inv_rebases_the_transaction(self, deep_system):
        """C0 walks SM_AD -> SM_AD_I (redirect) -> IM_AD_I (late-Inv absorb)
        and the absorb immediately acknowledges the invalidating requestor."""
        state = deep_system.initial_state()
        for event in DOUBLE_INV_TRACE[:-1]:
            state = deep_system.apply(state, event).state
        assert state.caches[0].fsm_state == "SM_AD_I"
        final = deep_system.apply(state, DOUBLE_INV_TRACE[-1])
        assert final.error is None
        assert final.state.caches[0].fsm_state == "IM_AD_I"
        acks = [
            m for m in final.state.network.in_flight()
            if m.mtype == "Inv_Ack" and m.src == 0 and m.dst == 2
        ]
        assert acks, "the late Inv must be acknowledged immediately"

    def test_run_drains_to_quiescence(self, deep_system):
        """After the double invalidation the system still completes: every
        in-flight message is absorbable and all caches settle."""
        state = deep_system.initial_state()
        for event in DOUBLE_INV_TRACE:
            state = deep_system.apply(state, event).state
        for _ in range(64):
            deliveries = [
                e for e in deep_system.enabled_events(state)
                if isinstance(e, DeliverMessage)
            ]
            if not deliveries:
                break
            outcome = deep_system.apply(state, deliveries[0])
            assert outcome.error is None, outcome.error
            state = outcome.state
        assert deep_system.is_quiescent(state)
        # C1's GetM was serialized last: it ends as the writer.
        assert [c.fsm_state for c in state.caches] == ["I", "M", "I"]


class TestGeneratedLateAbsorptions:
    def test_sm_ad_i_absorbs_late_inv(self, unordered_msi):
        """The redirected SM_AD_I state (no longer merged with IM_AD_I)
        handles Inv by re-basing onto IM_AD_I."""
        cache = unordered_msi.cache
        transitions = [
            t for t in cache.transitions()
            if t.state == "SM_AD_I"
            and isinstance(t.event, MessageEvent) and t.event.message == "Inv"
        ]
        assert len(transitions) == 1
        assert transitions[0].next_state == "IM_AD_I"

    def test_sm_ad_s_absorbs_late_inv(self, unordered_msi):
        """A redirect that will settle in S must not misread the late Inv as
        invalidating the future copy: it re-bases onto IM_AD_S and keeps the
        chain-S target."""
        cache = unordered_msi.cache
        transitions = [
            t for t in cache.transitions()
            if t.state == "SM_AD_S"
            and isinstance(t.event, MessageEvent) and t.event.message == "Inv"
        ]
        assert len(transitions) == 1
        assert transitions[0].next_state == "IM_AD_S"

    def test_pure_i_provenance_states_keep_the_diagnostic(self):
        """IM_AD_I (store from I; never a sharer before serialization) can
        never legally receive an Inv under exactly-once delivery -- with
        hardening off, the generator must NOT add a blanket absorb there, so
        the model checker still flags a directory that sent one.  The
        hardened build covers the cell too (a duplicated Inv can land
        anywhere), but marks it as generated fault tolerance."""
        from repro import protocols
        from repro.core import GenerationConfig, generate

        spec = protocols.load("MSI-Unordered")

        def inv_transitions(protocol):
            return [
                t for t in protocol.cache.transitions()
                if t.state == "IM_AD_I"
                and isinstance(t.event, MessageEvent) and t.event.message == "Inv"
            ]

        bare = generate(spec, GenerationConfig.nonstalling(harden=False))
        assert inv_transitions(bare) == []
        hardened = generate(spec, GenerationConfig.nonstalling())
        assert all(t.absorb for t in inv_transitions(hardened))
        assert inv_transitions(hardened)

    def test_ordered_protocols_unchanged(self, all_generated):
        """late_absorbs only activates for unordered-network specs: ordered
        MSI generates no SSP-level Inv transitions in redirected states --
        every Inv cell there is a hardening absorption (re-acknowledged so a
        post-reorder late Inv cannot strand the invalidator's ack count)."""
        from repro import protocols
        from repro.core import GenerationConfig, generate

        bare = generate(
            protocols.load("MSI"), GenerationConfig.nonstalling(harden=False)
        )
        assert not any(
            t for t in bare.cache.transitions()
            if t.state in ("SM_AD_I", "IM_AD_I")
            and isinstance(t.event, MessageEvent)
            and t.event.message == "Inv"
        )
        cache = all_generated[("MSI", "nonstalling")].cache
        hardened = [
            t for t in cache.transitions()
            if t.state in ("SM_AD_I", "IM_AD_I")
            and isinstance(t.event, MessageEvent)
            and t.event.message == "Inv"
        ]
        assert hardened and all(t.absorb for t in hardened)
