"""Cross-protocol verification matrix.

Every bundled protocol x {stalling, non-stalling} x {2, 3 caches} is
verified twice -- once with the plain search and once with cache-ID symmetry
reduction -- asserting that:

* both runs pass (``ok=True``);
* the reduced run never explores more states than the full run (and for
  three caches, strictly fewer: with identical caches the orbits are
  non-trivial);
* on intentionally-broken mutant protocols both runs report the *same*
  verdict (same violation name / same class of protocol error).

Three-cache cells use a one-access LOAD/STORE workload so the matrix stays
fast; the exhaustive 3-cache x 2-access configuration (the paper's Murphi
setup) and the 4-cache tier (24 permutations per state, enabled by
sorted-signature pre-canonicalization) run under the ``slow`` marker; the
paper workloads are also exercised by the E7/E9 benchmarks.
"""

import pytest

from repro import protocols
from repro.core import GenerationConfig, generate
from repro.dsl.types import AccessKind
from repro.system import System, Workload
from repro.verification import single_owner_invariant, verify

from verification_helpers import (
    MUTANT_DROPS,
    drop_cache_handler,
    make_missing_inv_mutant,
    make_swmr_mutant,
)


def _workload(name: str, num_caches: int) -> Workload:
    if num_caches >= 3:
        # Keep the 3-cache matrix cells fast: one access per cache, no
        # evictions (which MSI-Unordered lacks by design anyway).
        return Workload(max_accesses_per_cache=1,
                        access_kinds=(AccessKind.LOAD, AccessKind.STORE))
    if name == "MSI-Unordered":
        # The unordered variant has no eviction path by design.
        return Workload(max_accesses_per_cache=2,
                        access_kinds=(AccessKind.LOAD, AccessKind.STORE))
    return Workload(max_accesses_per_cache=2)


def _invariants(name: str):
    if name == "TSO-CC":
        # TSO-CC intentionally breaks SWMR in physical time (stale untracked
        # readers); check single ownership + data-value + deadlock freedom.
        return [single_owner_invariant]
    return None


@pytest.mark.parametrize("num_caches", [2, 3])
@pytest.mark.parametrize("config_label", ["nonstalling", "stalling"])
@pytest.mark.parametrize("name", protocols.available_protocols())
def test_matrix_cell_passes_and_reduction_never_grows(
    all_generated, name, config_label, num_caches
):
    generated = all_generated[(name, config_label)]
    system = System(generated, num_caches=num_caches,
                    workload=_workload(name, num_caches))
    invariants = _invariants(name)

    full = verify(system, invariants=invariants)
    reduced = verify(system, invariants=invariants, symmetry=True)

    assert full.ok, f"{name}/{config_label}/{num_caches}c full: {full.summary}"
    assert reduced.ok, f"{name}/{config_label}/{num_caches}c reduced: {reduced.summary}"
    assert reduced.symmetry_reduced and not full.symmetry_reduced
    assert reduced.states_explored <= full.states_explored
    if num_caches == 3:
        # With three interchangeable caches almost every state sits in a
        # non-trivial orbit; reduction must strictly shrink the search.
        assert reduced.states_explored < full.states_explored


def test_stalling_msi_three_caches_strict_reduction(all_generated):
    """Acceptance: symmetry reduction strictly shrinks the 3-cache stalling
    MSI search on the same workload."""
    generated = all_generated[("MSI", "stalling")]
    system = System(
        generated,
        num_caches=3,
        workload=Workload(max_accesses_per_cache=1,
                          access_kinds=(AccessKind.LOAD, AccessKind.STORE)),
    )
    full = verify(system)
    reduced = verify(system, symmetry=True)
    assert full.ok and reduced.ok
    assert reduced.states_explored < full.states_explored
    assert reduced.transitions_explored < full.transitions_explored


class TestMutantVerdictsMatchAcrossModes:
    """Broken protocols must fail identically with and without reduction."""

    @pytest.mark.parametrize("num_caches", [2, 3])
    def test_swmr_mutant(self, msi_spec, num_caches):
        mutant = make_swmr_mutant(msi_spec)
        system = System(mutant, num_caches=num_caches,
                        workload=Workload(max_accesses_per_cache=2))
        full = verify(system)
        reduced = verify(system, symmetry=True)
        assert not full.ok and not reduced.ok
        assert full.violation is not None and reduced.violation is not None
        assert full.violation.name == reduced.violation.name == "SWMR"
        assert reduced.states_explored <= full.states_explored

    @pytest.mark.parametrize("num_caches", [2, 3])
    def test_missing_inv_mutant(self, msi_spec, num_caches):
        mutant = make_missing_inv_mutant(msi_spec)
        system = System(mutant, num_caches=num_caches,
                        workload=Workload(max_accesses_per_cache=2))
        full = verify(system)
        reduced = verify(system, symmetry=True)
        assert not full.ok and not reduced.ok
        assert full.error is not None and "cannot handle message Inv" in full.error
        assert reduced.error is not None and "cannot handle message Inv" in reduced.error


@pytest.mark.slow
class TestFourCacheTier:
    """The 4-cache workload tier (4! = 24 permutations per state).

    Unlocked by sorted-signature pre-canonicalization: the factorial search
    only runs to break ties among equal per-cache signatures, so reduction
    pays for the fourth cache instead of drowning in it.
    """

    WORKLOAD = Workload(max_accesses_per_cache=1,
                        access_kinds=(AccessKind.LOAD, AccessKind.STORE))

    #: Bundled-spec verdicts at 4 caches x 1 access.  All clean: the MOSI
    #: nonstalling hole this tier used to pin (the directory answering its
    #: own recalled Data to the wrong cache after Fwd_GetS + O_Fwd_GetM
    #: redirects) is fixed -- deferred directory-destined responses now carry
    #: the redirect requestor through a saved slot (``Send.requestor_from_slot``).
    EXPECTED_OK = {
        "MSI": True,
        "MESI": True,
        "MOSI": True,
        "MSI-Upgrade": True,
        "MSI-Unordered": True,
        "TSO-CC": True,
    }

    @pytest.mark.parametrize("name", protocols.available_protocols())
    def test_full_vs_reduced_verdict_agreement(self, all_generated, name):
        generated = all_generated[(name, "nonstalling")]
        system = System(generated, num_caches=4, workload=self.WORKLOAD)
        invariants = _invariants(name)
        full = verify(system, invariants=invariants)
        reduced = verify(system, invariants=invariants, symmetry=True)
        assert full.ok == reduced.ok == self.EXPECTED_OK[name], (
            f"{name}: full {full.summary} | reduced {reduced.summary}"
        )
        if not full.ok:
            assert (full.error is None) == (reduced.error is None)
            assert (full.violation is None) == (reduced.violation is None)
        assert reduced.states_explored < full.states_explored
        # With four interchangeable caches the orbits approach 4! = 24.
        assert full.states_explored / reduced.states_explored > 10.0

    @pytest.mark.parametrize("name", protocols.available_protocols())
    def test_injected_mutant_fails_identically(self, name):
        """Dropping a reachable handler must FAIL in both modes, with the
        same error class, at four caches."""
        state, message = MUTANT_DROPS[name]
        mutant = drop_cache_handler(
            generate(protocols.load(name), GenerationConfig.nonstalling()),
            state, message,
        )
        system = System(mutant, num_caches=4, workload=self.WORKLOAD)
        invariants = _invariants(name)
        full = verify(system, invariants=invariants)
        reduced = verify(system, invariants=invariants, symmetry=True)
        assert not full.ok and not reduced.ok
        expected = f"cannot handle message {message}"
        assert full.error is not None and expected in full.error
        assert reduced.error is not None and expected in reduced.error

    def test_four_cache_reduced_beats_three_cache_full(self, all_generated):
        """Acceptance: at the same access depth, the symmetry-reduced
        4-cache MSI search explores strictly fewer states than the plain
        3-cache search -- the reduction more than pays for the extra cache."""
        generated = all_generated[("MSI", "stalling")]
        three = System(generated, num_caches=3, workload=self.WORKLOAD)
        four = System(generated, num_caches=4, workload=self.WORKLOAD)
        full3 = verify(three)
        red4 = verify(four, symmetry=True)
        assert full3.ok and red4.ok
        assert red4.states_explored < full3.states_explored


@pytest.mark.slow
@pytest.mark.parametrize("name", ["MSI", "MESI", "MOSI"])
def test_three_cache_two_access_exhaustive(all_generated, name):
    """The paper's Murphi configuration: three caches, full workload.

    Reduced and full searches must agree on the verdict, and reduction must
    shrink the state space by a factor approaching 3! = 6.
    """
    generated = all_generated[(name, "stalling")]
    system = System(generated, num_caches=3,
                    workload=Workload(max_accesses_per_cache=2))
    reduced = verify(system, symmetry=True)
    full = verify(system)
    assert reduced.ok and full.ok
    assert reduced.states_explored < full.states_explored
    assert full.states_explored / reduced.states_explored > 4.0
