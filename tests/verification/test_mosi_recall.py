"""Regression: the MOSI owner-recall race (deferred ``Data -> Dir`` requestor).

A cache whose GetM was serialized but not yet answered can be redirected by
a later ``Fwd_GetS`` (it will serve the reader and demote toward O) and then
by an ``O_Fwd_GetM`` (it will return the data to the directory and fall to
I).  Those deferred responses execute when the cache's *own* transaction
completes -- at which point the completing message's requestor is the cache
itself, not the cache the ``O_Fwd_GetM`` recalled the block for.  The
directory then answered the wrong cache: its ``Data (acks=...)`` went back
to the redirected cache, which had meanwhile settled in stable ``I`` -- the
latent hole ``TestFourCacheTier`` used to pin as ``EXPECTED_OK["MOSI"] =
False``.

Deferred directory-destined responses now bank the redirect requestor in a
saved slot (``Send.requestor_from_slot``, honored by the executor) whenever
the directory actually reads the requestor of that message type.  These
tests pin the generated structure, drive the exact four-cache scenario by
hand, and run the previously-failing tier exhaustively.
"""

import pytest

from repro import protocols
from repro.core import GenerationConfig, generate
from repro.dsl.types import AccessKind, Dest, Send
from repro.system import DIRECTORY_ID, System, Workload
from repro.system.system import DeliverMessage, IssueAccess
from repro.verification import verify


@pytest.fixture(scope="module")
def mosi_protocol():
    return generate(protocols.load("MOSI"), GenerationConfig.nonstalling())


def test_deferred_directory_responses_carry_the_saved_requestor(mosi_protocol):
    """The generated FSM stamps deferred Data->Dir sends with the slot that
    banks the redirecting forward's requestor."""
    stamped = [
        (transition.state, action)
        for transition in mosi_protocol.cache.transitions()
        for action in transition.actions
        if isinstance(action, Send) and action.requestor_from_slot is not None
    ]
    assert stamped, "no deferred directory-destined send was stamped"
    for state, action in stamped:
        assert action.to is Dest.DIRECTORY
        assert action.message == "Data"


def _deliver(system, state, mtype, dst, src=None):
    matches = [
        m
        for m in state.network.deliverable()
        if m.mtype == mtype and m.dst == dst and (src is None or m.src == src)
    ]
    assert len(matches) == 1, (
        f"expected exactly one deliverable {mtype} -> {dst}, "
        f"in flight: {[str(m) for m in state.network.in_flight()]}"
    )
    outcome = system.apply(state, DeliverMessage(message=matches[0]))
    assert outcome.error is None, outcome.error
    return outcome.state


def test_recall_data_reaches_the_recalling_requestor(mosi_protocol):
    """Drive the exact counterexample scenario; the recall must answer C1."""
    system = System(
        mosi_protocol,
        num_caches=4,
        workload=Workload(max_accesses_per_cache=1,
                          access_kinds=(AccessKind.LOAD, AccessKind.STORE)),
    )
    state = system.initial_state()
    for cache_id, access in [
        (0, AccessKind.LOAD),
        (1, AccessKind.STORE),
        (2, AccessKind.STORE),
        (3, AccessKind.STORE),
    ]:
        outcome = system.apply(state, IssueAccess(cache_id=cache_id, access=access))
        assert outcome.error is None
        state = outcome.state

    state = _deliver(system, state, "GetM", DIRECTORY_ID, src=3)  # C3 -> M
    state = _deliver(system, state, "Data", 3)                     # C3 stores v1
    state = _deliver(system, state, "GetM", DIRECTORY_ID, src=2)  # Fwd_GetM -> C3
    state = _deliver(system, state, "GetS", DIRECTORY_ID, src=0)  # Fwd_GetS -> C2
    state = _deliver(system, state, "GetM", DIRECTORY_ID, src=1)  # O_Fwd_GetM -> C2
    state = _deliver(system, state, "Fwd_GetS", 2)     # redirect 1: saves C0
    state = _deliver(system, state, "O_Fwd_GetM", 2)   # redirect 2: saves C1
    state = _deliver(system, state, "Fwd_GetM", 3)     # C3 serves Data -> C2
    state = _deliver(system, state, "Data", 2, src=3)  # C2 completes, defers fire

    [recall] = [
        m for m in state.network.in_flight()
        if m.mtype == "Data" and m.dst == DIRECTORY_ID
    ]
    assert recall.requestor == 1, (
        f"recalled Data must be on behalf of the recalling requestor C1, "
        f"got {recall}"
    )

    state = _deliver(system, state, "Data", DIRECTORY_ID, src=2)
    directory_answers = [
        m for m in state.network.in_flight()
        if m.mtype == "Data" and m.src == DIRECTORY_ID
    ]
    assert [m.dst for m in directory_answers] == [1], (
        "the directory must answer the recalling requestor C1 "
        f"(got {[str(m) for m in directory_answers]})"
    )

    # Drain the remaining messages in a fixed order; the run must complete
    # without protocol errors and reach global quiescence.
    for _ in range(64):
        deliverable = state.network.deliverable()
        if not deliverable:
            break
        outcome = system.apply(state, DeliverMessage(message=deliverable[0]))
        assert outcome.error is None, outcome.error
        state = outcome.state
    assert system.is_complete(state)


def test_previously_failing_tier_verifies_clean(mosi_protocol):
    """The 4-cache x 1-access LOAD/STORE tier that pinned the hole passes."""
    system = System(
        mosi_protocol,
        num_caches=4,
        workload=Workload(max_accesses_per_cache=1,
                          access_kinds=(AccessKind.LOAD, AccessKind.STORE)),
    )
    result = verify(system, symmetry=True)
    assert result.ok, result.summary
    assert not result.truncated
