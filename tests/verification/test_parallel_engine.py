"""Shared-memory parallel engine: forced spin-up correctness suite.

The engine only forks its worker fleet once a frontier crosses
``POOL_SPINUP_FRONTIER``; these tests pin the threshold to 0 so every
search -- even the small two-cache spaces the fast tier can afford --
actually exercises the zero-copy arenas, the work-stealing chunk claims,
the owner-sharded dedup and the sharded checkpoint, rather than the
in-process warm-up path.

Contracts under test:

* count parity with the serial engine across the symmetry / hash-compaction
  / kernel axes (the engine shares the serial search's canonical frames, so
  states, transitions and complete-state counts must match exactly);
* failure verdicts (protocol error, SWMR violation, deadlock) survive the
  fleet: the winning counterexample replays step-by-step through
  ``System.apply``.  Which equal-depth counterexample wins is
  schedule-dependent after sharded dedup, so traces are replay-verified
  rather than compared to the serial run's;
* cold visited-set partitions spill to disk when a ``spill_dir`` is given
  (forced here with a tiny threshold) without changing any count;
* a sharded checkpoint resumes under a *different* worker count -- the
  digest dumps are re-sharded on seed -- and still lands on the serial
  totals.
"""

import os

import pytest

from repro.system import System, Workload
from repro.verification import verify
from repro.verification.engine import parallel as parallel_mod
from repro.verification.engine import search as search_mod
from repro.verification.engine.shard import SpillableKeySet

from verification_helpers import (
    MessageDroppingSystem,
    make_missing_inv_mutant,
    make_swmr_mutant,
    replay_and_check,
)


@pytest.fixture(autouse=True)
def force_spinup(monkeypatch):
    monkeypatch.setattr(search_mod, "POOL_SPINUP_FRONTIER", 0)


@pytest.fixture(scope="module")
def msi_missing_inv_mutant(msi_spec):
    return make_missing_inv_mutant(msi_spec)


@pytest.fixture(scope="module")
def msi_swmr_mutant(msi_spec):
    return make_swmr_mutant(msi_spec)


def forced_parallel(system, **kwargs):
    kwargs.setdefault("processes", 2)
    result = verify(system, strategy="parallel", **kwargs)
    if result.strategy != "parallel":  # fork unavailable: serial fallback
        pytest.skip("parallel strategy unavailable on this platform")
    return result


PARITY_MODES = [
    dict(),
    dict(symmetry=True),
    dict(symmetry=True, hash_compaction=True),
    dict(kernel="object"),
]


@pytest.mark.parametrize("mode", PARITY_MODES, ids=lambda m: "-".join(
    f"{k}={v}" for k, v in m.items()) or "compiled")
def test_forked_search_matches_serial_counts(msi_nonstalling, mode):
    system = System(msi_nonstalling, num_caches=2,
                    workload=Workload(max_accesses_per_cache=2))
    serial = verify(system, **mode)
    result = forced_parallel(system, **mode)

    assert result.ok == serial.ok is True
    assert result.states_explored == serial.states_explored
    assert result.transitions_explored == serial.transitions_explored
    assert result.complete_states == serial.complete_states
    assert len(result.stats["worker_states"]) == 2
    assert sum(result.stats["worker_states"]) > 0


class TestForkedFailureVerdicts:
    def test_protocol_error_trace(self, msi_missing_inv_mutant):
        system = System(msi_missing_inv_mutant, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        result = forced_parallel(system, symmetry=True)
        assert not result.ok and result.error is not None
        assert result.trace, "a counterexample trace must be reported"
        replay_and_check(system, result)

    def test_invariant_violation_trace(self, msi_swmr_mutant):
        system = System(msi_swmr_mutant, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        result = forced_parallel(system, symmetry=True)
        assert not result.ok and result.violation is not None
        assert result.violation.name == "SWMR"
        replay_and_check(system, result)

    def test_deadlock_trace(self, msi_stalling):
        """The dropped-message system overrides ``enabled_events``, which
        pushes the workers onto the object executor -- the fleet's
        decode-and-apply fallback gets exercised too."""
        system = MessageDroppingSystem(
            msi_stalling, num_caches=2,
            workload=Workload(max_accesses_per_cache=1),
            dropped_mtype="GetM",
        )
        result = forced_parallel(system, symmetry=True)
        assert not result.ok and result.deadlock
        replay_and_check(system, result)


def test_spill_dir_bounds_shards_without_changing_counts(
        msi_nonstalling, tmp_path, monkeypatch):
    """A tiny spill threshold forces every worker shard onto the cold tier;
    membership answers must come back from the sorted disk runs with the
    same totals, and the spilled bytes must be reported."""
    class TinySpill(SpillableKeySet):
        def __init__(self, spill_dir=None, **kwargs):
            kwargs.setdefault("spill_threshold", 64)
            super().__init__(spill_dir, **kwargs)

    monkeypatch.setattr(parallel_mod, "SpillableKeySet", TinySpill)
    system = System(msi_nonstalling, num_caches=2,
                    workload=Workload(max_accesses_per_cache=2))
    serial = verify(system, symmetry=True, hash_compaction=True)
    result = forced_parallel(system, symmetry=True, hash_compaction=True,
                             spill_dir=str(tmp_path))

    assert result.ok
    assert result.states_explored == serial.states_explored
    assert result.transitions_explored == serial.transitions_explored
    assert result.complete_states == serial.complete_states
    assert result.stats["spill_bytes"] > 0


def test_sharded_checkpoint_resumes_under_different_worker_count(
        msi_nonstalling, tmp_path):
    """The checkpoint carries worker digest dumps, not a key dict; seeding
    re-shards them, so leg 2 may run a different fleet size than leg 1 and
    must still land on the uninterrupted totals."""
    system = System(msi_nonstalling, num_caches=2,
                    workload=Workload(max_accesses_per_cache=2))
    serial = verify(system, symmetry=True)
    path = str(tmp_path / "run.ckpt")

    cut = max(2, serial.states_explored // 2)
    leg = forced_parallel(system, symmetry=True, max_states=cut,
                          checkpoint=path)
    assert leg.partial and leg.ok
    assert os.path.exists(path), "the budgeted leg must persist a checkpoint"

    result = forced_parallel(system, symmetry=True, processes=3,
                             max_states=10 ** 6, checkpoint=path)
    assert result.ok and not result.partial
    assert result.stats["resume_level"] is not None
    assert result.states_explored == serial.states_explored
    assert result.transitions_explored == serial.transitions_explored
    assert result.complete_states == serial.complete_states
    assert len(result.stats["worker_states"]) == 3
    assert not os.path.exists(path), "a completed run consumes its checkpoint"
