"""Differential tests for the vectorized frontier kernel.

The batch path's contract is *bit-exactness*: ``kernel="vectorized"`` must
return the same verdicts, the same traces and (on passing searches) the same
exploration counts as the compiled per-state kernel and the object executor,
while performing zero ``GlobalState`` decodes on the hot path.  Three layers
pin that contract:

* **Expansion parity** -- for sampled reachable states, one
  :meth:`VectorizedKernel.collect_level` call must enumerate exactly the
  plans (same encoded events, same successor encodings, same order) that
  ``TransitionKernel.enabled`` + per-plan apply produce.
* **Whole-search parity** -- every bundled protocol x {stalling,
  nonstalling} x {plain, symmetry-reduced}, plus failing mutants, compared
  across all three kernels.
* **The explicit-fallback contract** -- fault models, multi-address planes
  and litmus workloads are *outside* the batch model: requesting
  ``kernel="vectorized"`` there must transparently run (and report) the
  compiled kernel, never a wrong batch answer.
"""

import pytest

from repro import protocols
from repro.core import GenerationConfig, generate
from repro.dsl.types import AccessKind
from repro.system import FaultModel, LitmusWorkload, System, Workload
from repro.verification import verify

from verification_helpers import (
    MUTANT_DROPS,
    drop_cache_handler,
    make_missing_inv_mutant,
    make_swmr_mutant,
    sample_reachable_states,
)

np = pytest.importorskip("numpy")

KERNELS = ("compiled", "vectorized", "object")


def _workload(name: str) -> Workload:
    if name == "MSI-Unordered":
        # The unordered variant has no eviction path by design.
        return Workload(max_accesses_per_cache=2,
                        access_kinds=(AccessKind.LOAD, AccessKind.STORE))
    return Workload(max_accesses_per_cache=2)


def _invariants(name: str):
    if name == "TSO-CC":
        from repro.verification import single_owner_invariant
        return [single_owner_invariant]
    return None


class TestExpansionParity:
    """collect_level against enabled+apply, state by state."""

    @pytest.mark.parametrize("config_label", ["nonstalling", "stalling"])
    @pytest.mark.parametrize("name", protocols.available_protocols())
    def test_sampled_states_expand_identically(
        self, all_generated, name, config_label
    ):
        generated = all_generated[(name, config_label)]
        system = System(generated, num_caches=3, workload=_workload(name))
        vk = system.vectorized_kernel()
        assert vk.supported, f"{name}/{config_label} should support batching"
        kernel = system.kernel()
        codec = system.codec()
        net_offset = vk.net_offset
        compared = 0
        for state in sample_reachable_states(system, seed=20):
            enc = codec.encode(state)
            plans, net = kernel.enabled(enc)
            serial = []
            slow = False
            for plan in plans:
                succ = plan[0](enc, plan, net)
                if succ is None:
                    slow = True
                    break
                serial.append((plan[1], succ))
            F = np.asarray([enc[:net_offset]], dtype=vk.dtype)
            sid = vk.intern_section(enc[net_offset:])
            level = vk.collect_level([0], F, [sid])
            if level.fallbacks:
                # The batch path may only refuse rows the compiled path also
                # finds hard (slow-path applies); it must never *drop* rows.
                assert slow or level.fallbacks == [0]
                continue
            assert not slow
            # Same plans, same order, same encoded events.
            assert level.eevs == [plan[1] for plan in plans]
            # Same successor encodings, reconstructed from the deltas.
            prefix = list(enc[:net_offset])
            off = 0
            batch = []
            for i in range(level.transitions):
                out = prefix.copy()
                nlanes = level.lens[i]
                for col, val in zip(
                    level.flat_cols[off : off + nlanes],
                    level.flat_vals[off : off + nlanes],
                ):
                    out[col] = val
                off += nlanes
                batch.append(tuple(out) + vk.section_tail(level.sids[i]))
            assert batch == [succ for _eev, succ in serial]
            compared += 1
        assert compared >= 10, f"only {compared} states compared"


class TestWholeSearchParity:
    """verify() across the three kernels: identical results everywhere."""

    @pytest.mark.parametrize("symmetry", [False, True])
    @pytest.mark.parametrize("config_label", ["nonstalling", "stalling"])
    @pytest.mark.parametrize("name", protocols.available_protocols())
    def test_counts_and_verdicts_match(
        self, all_generated, name, config_label, symmetry
    ):
        generated = all_generated[(name, config_label)]
        system = System(generated, num_caches=2, workload=_workload(name))
        invariants = _invariants(name)
        results = {
            k: verify(system, invariants=invariants, symmetry=symmetry, kernel=k)
            for k in KERNELS
        }
        ref = results["compiled"]
        assert ref.ok, f"{name}/{config_label}: {ref.summary}"
        for k, result in results.items():
            assert result.ok, f"{name}/{config_label}/{k}: {result.summary}"
            assert result.states_explored == ref.states_explored, k
            assert result.transitions_explored == ref.transitions_explored, k
            assert result.complete_states == ref.complete_states, k
        assert results["vectorized"].kernel == "vectorized"
        assert results["object"].kernel == "object"

    @pytest.mark.parametrize("symmetry", [False, True])
    def test_three_cache_reference_counts(self, msi_stalling, symmetry):
        """The paper's stalling-MSI tier at 3 caches: counts bit-identical
        across kernels (1-access workload keeps the cell fast)."""
        system = System(
            msi_stalling, num_caches=3,
            workload=Workload(max_accesses_per_cache=1,
                              access_kinds=(AccessKind.LOAD, AccessKind.STORE)),
        )
        compiled = verify(system, symmetry=symmetry, kernel="compiled")
        vectorized = verify(system, symmetry=symmetry, kernel="vectorized")
        assert compiled.ok and vectorized.ok
        assert vectorized.states_explored == compiled.states_explored
        assert vectorized.transitions_explored == compiled.transitions_explored
        assert vectorized.kernel == "vectorized"
        assert vectorized.stats["fallback_transitions"] == 0


class TestFailureTraceParity:
    """Failing searches: verdict, violation/error and trace must match the
    serial kernels exactly (counts may differ within the failing level --
    the batch commits whole levels)."""

    @pytest.mark.parametrize("symmetry", [False, True])
    def test_swmr_mutant_trace(self, msi_spec, symmetry):
        mutant = make_swmr_mutant(msi_spec)
        system = System(mutant, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        compiled = verify(system, symmetry=symmetry, kernel="compiled")
        vectorized = verify(system, symmetry=symmetry, kernel="vectorized")
        assert not compiled.ok and not vectorized.ok
        assert compiled.violation is not None and vectorized.violation is not None
        assert vectorized.violation.name == compiled.violation.name == "SWMR"
        assert vectorized.trace == compiled.trace

    @pytest.mark.parametrize("symmetry", [False, True])
    def test_missing_inv_mutant_trace(self, msi_spec, symmetry):
        mutant = make_missing_inv_mutant(msi_spec)
        system = System(mutant, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        compiled = verify(system, symmetry=symmetry, kernel="compiled")
        vectorized = verify(system, symmetry=symmetry, kernel="vectorized")
        assert not compiled.ok and not vectorized.ok
        assert compiled.error is not None and vectorized.error is not None
        assert "cannot handle message Inv" in vectorized.error
        assert vectorized.error == compiled.error
        assert vectorized.trace == compiled.trace

    @pytest.mark.parametrize("name", protocols.available_protocols())
    def test_dropped_handler_mutants_fail_identically(self, name):
        state, message = MUTANT_DROPS[name]
        mutant = drop_cache_handler(
            generate(protocols.load(name), GenerationConfig.nonstalling()),
            state, message,
        )
        system = System(mutant, num_caches=2, workload=_workload(name))
        invariants = _invariants(name)
        compiled = verify(system, invariants=invariants, kernel="compiled")
        vectorized = verify(system, invariants=invariants, kernel="vectorized")
        assert not compiled.ok and not vectorized.ok
        assert compiled.error is not None and vectorized.error is not None
        assert vectorized.error == compiled.error
        assert vectorized.trace == compiled.trace


class TestExplicitFallbackContract:
    """Configurations outside the batch model run the compiled kernel and
    say so -- never a silently wrong batch answer."""

    def test_fault_model_falls_back(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1),
                        faults=FaultModel(duplicate=True))
        result = verify(system, kernel="vectorized")
        reference = verify(system, kernel="compiled")
        assert result.kernel == "compiled"
        assert result.ok == reference.ok
        assert result.states_explored == reference.states_explored

    def test_multi_address_falls_back(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1),
                        num_addresses=2)
        result = verify(system, kernel="vectorized")
        reference = verify(system, kernel="compiled")
        assert result.kernel == "compiled"
        assert result.ok == reference.ok
        assert result.states_explored == reference.states_explored

    def test_litmus_workload_falls_back(self, msi_nonstalling):
        workload = LitmusWorkload(programs=(
            ((AccessKind.STORE, 0),),
            ((AccessKind.LOAD, 0),),
        ))
        system = System(msi_nonstalling, num_caches=2, workload=workload)
        result = verify(system, kernel="vectorized")
        reference = verify(system, kernel="compiled")
        assert result.kernel == "compiled"
        assert result.ok == reference.ok
        assert result.states_explored == reference.states_explored

    def test_dfs_strategy_falls_back(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1))
        result = verify(system, kernel="vectorized", strategy="dfs")
        assert result.kernel == "compiled"
        assert result.ok

    def test_unsupported_kernel_name_rejected(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1))
        with pytest.raises(ValueError, match="vectorized"):
            verify(system, kernel="simd")

    def test_missing_numpy_raises_and_verify_falls_back(
        self, msi_nonstalling, monkeypatch
    ):
        import repro.system.vectorized as vec
        from repro.system import VectorizedUnavailable

        monkeypatch.setattr(vec, "_np", None)
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1))
        with pytest.raises(VectorizedUnavailable, match="numpy"):
            system.vectorized_kernel()
        result = verify(system, kernel="vectorized")
        assert result.kernel == "compiled"
        assert result.ok
