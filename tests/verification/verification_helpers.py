"""Shared helpers for the verification-layer tests: protocol mutants and
random reachable-state sampling (hand-rolled, deterministic generators).

Kept out of conftest.py on purpose: test modules import these helpers by
module name, and ``conftest`` is ambiguous once several test roots (tests/,
benchmarks/) each carry their own conftest on sys.path."""

from __future__ import annotations

import random

from repro.core import GenerationConfig, generate
from repro.core.fsm import MessageEvent, event_key
from repro.dsl.types import Permission
from repro.system import System
from repro.system.system import DeliverMessage, GlobalState


def make_missing_inv_mutant(msi_spec):
    """Generate MSI, then sabotage it: drop the Invalidation handling in S.

    The model checker reports this as an 'unexpected message' protocol error
    (mirroring Murphi), with a counterexample trace.
    """
    generated = generate(msi_spec, GenerationConfig())
    cache = generated.cache
    cache._transitions = [
        t
        for t in cache.transitions()
        if not (
            t.state == "S"
            and isinstance(t.event, MessageEvent)
            and t.event.message == "Inv"
        )
    ]
    cache._index = {}
    for t in cache._transitions:
        cache._index.setdefault((t.state, event_key(t.event)), []).append(t)
    return generated


def make_swmr_mutant(msi_spec):
    """Generate MSI, then pretend IS_D already grants write permission."""
    generated = generate(msi_spec, GenerationConfig())
    generated.cache.state("IS_D").permission = Permission.READ_WRITE
    return generated


class MessageDroppingSystem(System):
    """A system whose network silently refuses to deliver one message type.

    Dropping a request type is symmetric in the cache IDs, so it is a valid
    subject for the symmetry-reduced search; it deadlocks as soon as any
    cache waits on a response to the dropped request.
    """

    def __init__(self, *args, dropped_mtype: str, **kwargs):
        super().__init__(*args, **kwargs)
        self.dropped_mtype = dropped_mtype

    def enabled_events(self, state):
        return [
            e
            for e in super().enabled_events(state)
            if not (
                isinstance(e, DeliverMessage) and e.message.mtype == self.dropped_mtype
            )
        ]


def sample_reachable_states(
    system: System, *, seed: int, walks: int = 8, max_steps: int = 40
) -> list[GlobalState]:
    """Deterministic random-walk generator of reachable global states."""
    rng = random.Random(seed)
    states: list[GlobalState] = [system.initial_state()]
    for _ in range(walks):
        state = system.initial_state()
        for _ in range(max_steps):
            events = system.enabled_events(state)
            if not events:
                break
            outcome = system.apply(state, rng.choice(events))
            if outcome.error is not None:
                break
            state = outcome.state
            states.append(state)
    return states
