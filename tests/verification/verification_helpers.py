"""Shared helpers for the verification-layer tests: protocol mutants and
random reachable-state sampling (hand-rolled, deterministic generators).

Kept out of conftest.py on purpose: test modules import these helpers by
module name, and ``conftest`` is ambiguous once several test roots (tests/,
benchmarks/) each carry their own conftest on sys.path."""

from __future__ import annotations

import random

import pytest

from repro.core import GenerationConfig, generate
from repro.core.fsm import MessageEvent, event_key
from repro.dsl.types import Permission
from repro.system import System
from repro.system.system import DeliverMessage, GlobalState
from repro.verification import default_invariants


def replay_and_check(system, result):
    """Replay ``result.trace_events`` from the initial state and assert the
    reported outcome is reproduced exactly."""
    state = system.initial_state()
    events = result.trace_events
    assert [str(e) for e in events] == result.trace
    for step, event in enumerate(events):
        assert event in system.enabled_events(state), (
            f"replay step {step}: {event} is not enabled"
        )
        outcome = system.apply(state, event)
        if step == len(events) - 1 and result.error is not None:
            assert outcome.error == result.error
            return
        assert outcome.error is None, f"replay step {step} errored: {outcome.error}"
        state = outcome.state
    if result.error is not None:
        pytest.fail("error trace replayed without reproducing the error")
    if result.violation is not None:
        reproduced = [
            v
            for v in (inv(system, state) for inv in default_invariants())
            if v is not None and str(v) == str(result.violation)
        ]
        assert reproduced, f"violation {result.violation} not reproduced by replay"
        return
    if result.deadlock:
        assert not system.enabled_events(state)
        assert not system.is_quiescent(state)
        return
    pytest.fail("failing result carried no violation/error/deadlock")


def drop_cache_handler(generated, state: str, message: str):
    """Sabotage a generated protocol: remove the cache transition(s) for
    *message* in *state*.

    The model checker reports the resulting hole as an 'unexpected message'
    protocol error (mirroring Murphi), with a counterexample trace.  Always
    pass a freshly generated protocol -- the mutation is in place, so shared
    fixtures must not be handed to it.
    """
    cache = generated.cache
    cache._transitions = [
        t
        for t in cache.transitions()
        if not (
            t.state == state
            and isinstance(t.event, MessageEvent)
            and t.event.message == message
        )
    ]
    cache._index = {}
    for t in cache._transitions:
        cache._index.setdefault((t.state, event_key(t.event)), []).append(t)
    return generated


#: Per-protocol (state, message) pairs whose dropped handler is reachable on
#: a 1-access LOAD/STORE workload: another cache's store forwards an
#: invalidation (or an ownership transfer, for TSO-CC which has no Inv) into
#: the victim.
MUTANT_DROPS = {
    "MSI": ("S", "Inv"),
    "MESI": ("S", "Inv"),
    "MOSI": ("S", "Inv"),
    "MSI-Upgrade": ("S", "Inv"),
    "MSI-Unordered": ("S", "Inv"),
    "TSO-CC": ("M", "Fwd_GetM"),
}


def make_missing_inv_mutant(msi_spec):
    """Generate MSI, then drop the Invalidation handling in S."""
    return drop_cache_handler(generate(msi_spec, GenerationConfig()), "S", "Inv")


def make_swmr_mutant(msi_spec):
    """Generate MSI, then pretend IS_D already grants write permission."""
    generated = generate(msi_spec, GenerationConfig())
    generated.cache.state("IS_D").permission = Permission.READ_WRITE
    return generated


class MessageDroppingSystem(System):
    """A system whose network silently refuses to deliver one message type.

    Dropping a request type is symmetric in the cache IDs, so it is a valid
    subject for the symmetry-reduced search; it deadlocks as soon as any
    cache waits on a response to the dropped request.
    """

    def __init__(self, *args, dropped_mtype: str, **kwargs):
        super().__init__(*args, **kwargs)
        self.dropped_mtype = dropped_mtype

    def enabled_events(self, state):
        return [
            e
            for e in super().enabled_events(state)
            if not (
                isinstance(e, DeliverMessage) and e.message.mtype == self.dropped_mtype
            )
        ]


def sample_reachable_states(
    system: System, *, seed: int, walks: int = 8, max_steps: int = 40
) -> list[GlobalState]:
    """Deterministic random-walk generator of reachable global states."""
    rng = random.Random(seed)
    states: list[GlobalState] = [system.initial_state()]
    for _ in range(walks):
        state = system.initial_state()
        for _ in range(max_steps):
            events = system.enabled_events(state)
            if not events:
                break
            outcome = system.apply(state, rng.choice(events))
            if outcome.error is not None:
                break
            state = outcome.state
            states.append(state)
    return states
